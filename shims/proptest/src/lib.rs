//! Shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the `proptest!`, `prop_assert*!` and `prop_oneof!` macros, `any::<T>()`
//! for the primitive types, range and regex-pattern string strategies,
//! `Just`, tuples, `prop_map`, `prop_recursive`, `collection::vec`,
//! `option::of` and `num::f64::NORMAL`.
//!
//! Semantics: each test runs `cases` random samples drawn from a
//! deterministic per-test-name seed (reproducible across runs and
//! machines). Failing cases are reported with their case index; there is
//! no shrinking.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// --------------------------------------------------------------------------
// Deterministic generator
// --------------------------------------------------------------------------

/// SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a raw value.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed deterministically from a test name (FNV-1a).
    pub fn for_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

// --------------------------------------------------------------------------
// Config and failure type
// --------------------------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property, carried out of the test body by `prop_assert*`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

// --------------------------------------------------------------------------
// Strategy core
// --------------------------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// inner (smaller) structure and returns a strategy for one level
    /// above it; `depth` bounds the nesting. The `_desired_size` and
    /// `_expected_branch` tuning knobs of real proptest are accepted and
    /// ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Bias toward deeper structures, keeping leaves reachable so
            // generated sizes stay bounded.
            current = Union {
                arms: vec![(1, base.clone()), (2, deeper)],
            }
            .boxed();
        }
        current
    }
}

/// Type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted union over same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.next_u64() % total.max(1);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        self.arms[0].1.sample(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --------------------------------------------------------------------------
// any::<T>() for primitives
// --------------------------------------------------------------------------

/// Marker strategy for `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

/// Uniform-with-edge-cases generation for a primitive type.
pub trait ArbitraryValue {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for a primitive type.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // 1-in-8: pinned edge case; else uniform bits.
                    if rng.below(8) == 0 {
                        match rng.below(4) {
                            0 => 0 as $t,
                            1 => 1 as $t,
                            2 => <$t>::MIN,
                            _ => <$t>::MAX,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Like proptest's default float Arbitrary: positives, negatives,
        // normals, subnormals, zeros and infinities — but never NaN.
        if rng.below(8) == 0 {
            const EDGES: [f64; 8] = [
                0.0,
                -0.0,
                1.0,
                f64::MIN_POSITIVE,
                f64::MAX,
                f64::MIN,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ];
            EDGES[rng.below(EDGES.len())]
        } else {
            // Arbitrary bit patterns cover subnormals and both tails;
            // NaN patterns are folded to a same-signed infinity.
            let v = f64::from_bits(rng.next_u64());
            if v.is_nan() {
                f64::INFINITY.copysign(v)
            } else {
                v
            }
        }
    }
}

impl ArbitraryValue for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        if rng.below(8) == 0 {
            const EDGES: [f32; 8] = [
                0.0,
                -0.0,
                1.0,
                f32::MIN_POSITIVE,
                f32::MAX,
                f32::MIN,
                f32::INFINITY,
                f32::NEG_INFINITY,
            ];
            EDGES[rng.below(EDGES.len())]
        } else {
            let v = f32::from_bits(rng.next_u64() as u32);
            if v.is_nan() {
                f32::INFINITY.copysign(v)
            } else {
                v
            }
        }
    }
}

// --------------------------------------------------------------------------
// Range strategies
// --------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

// --------------------------------------------------------------------------
// Tuple strategies
// --------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

// --------------------------------------------------------------------------
// Pattern string strategies
// --------------------------------------------------------------------------

/// A `&'static str` is interpreted as a simplified regex generator
/// supporting the patterns the workspace uses: character classes
/// (`[a-z0-9 .,;:/-]`), the printable-class escape `\PC`, literal
/// characters, and the quantifiers `*`, `+`, `{n}`, `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum CharSet {
    /// Printable characters (`\PC`): ASCII printable plus a few multibyte
    /// code points to exercise UTF-8 handling.
    Printable,
    /// Explicit inclusive ranges from a `[...]` class.
    Ranges(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Printable => {
                const EXOTIC: [char; 6] = ['é', 'Ω', '→', '日', '𝄞', 'ß'];
                if rng.below(8) == 0 {
                    EXOTIC[rng.below(EXOTIC.len())]
                } else {
                    (0x20 + rng.below(0x7f - 0x20) as u8) as char
                }
            }
            CharSet::Ranges(ranges) => {
                let total: usize = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as usize) - (*lo as usize) + 1)
                    .sum();
                let mut pick = rng.below(total.max(1));
                for (lo, hi) in ranges {
                    let n = (*hi as usize) - (*lo as usize) + 1;
                    if pick < n {
                        return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                    }
                    pick -= n;
                }
                ranges[0].0
            }
            CharSet::Literal(c) => *c,
        }
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_pattern(pattern);
    let mut out = String::new();
    for (set, min, max) in &atoms {
        let n = if min == max {
            *min
        } else {
            min + rng.below(max - min + 1)
        };
        for _ in 0..n {
            out.push(set.sample(rng));
        }
    }
    out
}

/// Parse into `(charset, min_repeat, max_repeat)` atoms.
fn parse_pattern(pattern: &str) -> Vec<(CharSet, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '\\' => {
                // Only `\PC` (printable) and escaped literals appear in
                // the workspace's patterns.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    CharSet::Printable
                } else {
                    let c = chars.get(i + 1).copied().unwrap_or('\\');
                    i += 2;
                    CharSet::Literal(c)
                }
            }
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .expect("unclosed [class] in pattern");
                let body = &chars[i + 1..close];
                i = close + 1;
                CharSet::Ranges(parse_class(body))
            }
            c => {
                i += 1;
                CharSet::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 16)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            Some('{') => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .expect("unclosed {quantifier} in pattern");
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        atoms.push((set, min, max));
    }
    atoms
}

fn parse_class(body: &[char]) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let lo = match body[i] {
            '\\' => {
                i += 1;
                body.get(i).copied().unwrap_or('\\')
            }
            c => c,
        };
        // `a-z` range when a dash sits between two chars.
        if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
            let hi = body[i + 2];
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    ranges
}

// --------------------------------------------------------------------------
// Collections, option, numeric sub-strategies
// --------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>` (3-in-4 `Some`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod num {
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Strategy over normal (finite, non-subnormal) `f64` values.
        pub struct NormalStrategy;

        /// `proptest::num::f64::NORMAL`.
        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                let sign = rng.next_u64() & (1 << 63);
                // Biased exponent 1..=2046: normal, finite.
                let exp = 1 + (rng.next_u64() % 2046);
                let mantissa = rng.next_u64() & ((1 << 52) - 1);
                f64::from_bits(sign | (exp << 52) | mantissa)
            }
        }
    }
}

// --------------------------------------------------------------------------
// Macros
// --------------------------------------------------------------------------

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg), $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()), $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr),) => {};
    (cfg = ($cfg:expr), $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __result: ::std::result::Result<(), $crate::TestCaseError> = {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (move || { $body ::std::result::Result::Ok(()) })()
                };
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), __case, __config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg), $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`", __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`", __a, __b
            )));
        }
    }};
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

// --------------------------------------------------------------------------
// Self-tests
// --------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_shapes() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = crate::Strategy::sample(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.chars().count()), "bad len: {s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "bad first char in {s:?}");
        }
    }

    #[test]
    fn printable_star_is_bounded() {
        let mut rng = crate::TestRng::from_seed(2);
        for _ in 0..100 {
            let s = crate::Strategy::sample(&"\\PC*", &mut rng);
            assert!(s.chars().count() <= 16);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn class_with_punctuation() {
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..100 {
            let s = crate::Strategy::sample(&"[a-z:/.]{1,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || ":/.".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, w in 1u8..=3) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((1..=3).contains(&w));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_weighted_hits_all_arms(v in prop_oneof![2 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn normal_floats_are_normal(v in crate::num::f64::NORMAL) {
            prop_assert!(v.is_normal(), "{} not normal", v);
        }

        #[test]
        fn tuples_and_map(pair in (0u8..4, 0u8..4).prop_map(|(a, b)| (a, b))) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..100 {
            let t = crate::Strategy::sample(&strat, &mut rng);
            assert!(depth(&t) <= 4, "tree too deep: {t:?}");
        }
    }

    #[test]
    fn deterministic_given_name() {
        let mut a = crate::TestRng::for_name("x::y");
        let mut b = crate::TestRng::for_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
