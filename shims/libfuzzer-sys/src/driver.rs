//! The fuzzing runtime: argument parsing, corpus replay, the mutation
//! loop, crash minimization, and artifact writing.
//!
//! Understands the subset of libFuzzer's command line that the scripts
//! and humans here actually use:
//!
//! * `-runs=N` — stop after N executions (replay included)
//! * `-max_total_time=SECS` — stop after a wall-clock budget
//! * `-seed=N` — RNG seed (default 1; runs are deterministic per seed)
//! * `-max_len=N` — cap mutated input length (default 4096 or the
//!   largest seed, whichever is bigger)
//! * `-artifact_prefix=PATH/` — where crashers are written
//! * positional directories — corpus dirs, replayed before mutation
//! * positional files — reproduce mode: run each once, then exit
//!
//! With neither `-runs` nor `-max_total_time`, a 30-second budget
//! applies so a bare invocation terminates.
//!
//! Crashing inputs are greedily minimized by chunk removal while they
//! still crash, written to the artifact directory as `crash-<hash>`,
//! and the process exits nonzero.

use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cov;
use crate::mutate::{havoc, Rng};

/// Last panic message captured by the quiet hook.
static PANIC_MSG: Mutex<Option<String>> = Mutex::new(None);

/// Runtime configuration parsed from the command line.
struct Config {
    runs: Option<u64>,
    max_total_time: Option<u64>,
    seed: u64,
    max_len: Option<usize>,
    artifact_prefix: Option<String>,
    corpus_dirs: Vec<PathBuf>,
    repro_files: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Config {
    let mut cfg = Config {
        runs: None,
        max_total_time: None,
        seed: 1,
        max_len: None,
        artifact_prefix: None,
        corpus_dirs: Vec::new(),
        repro_files: Vec::new(),
    };
    for a in args {
        if let Some(v) = a.strip_prefix("-runs=") {
            cfg.runs = v.parse().ok();
        } else if let Some(v) = a.strip_prefix("-max_total_time=") {
            cfg.max_total_time = v.parse().ok();
        } else if let Some(v) = a.strip_prefix("-seed=") {
            cfg.seed = v.parse().unwrap_or(1);
        } else if let Some(v) = a.strip_prefix("-max_len=") {
            cfg.max_len = v.parse().ok();
        } else if let Some(v) = a.strip_prefix("-artifact_prefix=") {
            cfg.artifact_prefix = Some(v.to_string());
        } else if a.starts_with('-') {
            eprintln!("INFO: ignoring unsupported flag {a}");
        } else {
            let p = PathBuf::from(a);
            if p.is_dir() {
                cfg.corpus_dirs.push(p);
            } else {
                cfg.repro_files.push(p);
            }
        }
    }
    cfg
}

/// Install a panic hook that records the message instead of printing a
/// backtrace — the loop catches thousands of candidate panics during
/// minimization and must not spam stderr.
fn install_quiet_hook() {
    panic::set_hook(Box::new(|info| {
        let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = info.payload().downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        let loc = info
            .location()
            .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()))
            .unwrap_or_else(|| "<unknown>".to_string());
        *PANIC_MSG.lock().unwrap() = Some(format!("panicked at {loc}:\n{msg}"));
    }));
}

/// Run the target once; `Err(message)` if it panicked.
fn exec(target: &mut dyn FnMut(&[u8]), data: &[u8]) -> Result<(), String> {
    cov::reset_counters();
    PANIC_MSG.lock().unwrap().take();
    match panic::catch_unwind(AssertUnwindSafe(|| target(data))) {
        Ok(()) => Ok(()),
        Err(_) => Err(PANIC_MSG
            .lock()
            .unwrap()
            .take()
            .unwrap_or_else(|| "panic with no captured message".to_string())),
    }
}

/// FNV-1a over the input, for stable artifact names.
fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Load every regular file under the corpus directories, smallest first
/// (small inputs replay and mutate faster), name-tie-broken for
/// determinism.
fn load_corpus(dirs: &[PathBuf]) -> Vec<Vec<u8>> {
    let mut files: Vec<(u64, PathBuf)> = Vec::new();
    for dir in dirs {
        let Ok(entries) = std::fs::read_dir(dir) else {
            eprintln!("WARN: cannot read corpus dir {}", dir.display());
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_file() {
                let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
                files.push((len, p));
            }
        }
    }
    files.sort();
    files
        .into_iter()
        .filter_map(|(_, p)| std::fs::read(&p).ok())
        .collect()
}

/// Greedy chunk-removal minimization: halving chunk sizes, drop any
/// chunk whose removal still crashes. Bounded by an execution budget so
/// pathological inputs cannot stall the run.
fn minimize(target: &mut dyn FnMut(&[u8]), input: &[u8]) -> Vec<u8> {
    let mut cur = input.to_vec();
    let mut budget: usize = 2000;
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i + chunk <= cur.len() && budget > 0 {
            budget -= 1;
            let mut cand = cur.clone();
            cand.drain(i..i + chunk);
            if exec(target, &cand).is_err() {
                cur = cand;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 || budget == 0 {
            break;
        }
        chunk /= 2;
    }
    cur
}

/// Write a crashing input to the artifact directory; returns its path.
fn write_artifact(prefix: &str, data: &[u8]) -> PathBuf {
    let dir = Path::new(prefix);
    if prefix.ends_with('/') || dir.is_dir() {
        let _ = std::fs::create_dir_all(dir);
    } else if let Some(parent) = dir.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let path = PathBuf::from(format!("{prefix}crash-{:016x}", fnv64(data)));
    if let Err(e) = std::fs::write(&path, data) {
        eprintln!("ERROR: cannot write artifact {}: {e}", path.display());
    }
    path
}

fn report_crash(target: &mut dyn FnMut(&[u8]), input: &[u8], msg: &str, prefix: &str) -> ! {
    eprintln!("==CRASH== {msg}");
    let min = minimize(target, input);
    let path = write_artifact(prefix, &min);
    eprintln!(
        "==CRASH== minimized {} -> {} bytes, artifact written to {}",
        input.len(),
        min.len(),
        path.display()
    );
    std::process::exit(1);
}

/// Fuzzing entry point; `name` is the fuzz target's binary name and
/// `target` the user-supplied body. Never returns on crash (exits 1).
pub fn run(name: &str, mut target: impl FnMut(&[u8])) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = parse_args(&args);
    install_quiet_hook();
    let prefix = cfg
        .artifact_prefix
        .clone()
        .unwrap_or_else(|| format!("fuzz/artifacts/{name}/"));

    // Reproduce mode: run each file once, loudly, and exit.
    if !cfg.repro_files.is_empty() {
        for f in &cfg.repro_files {
            let data = match std::fs::read(f) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("ERROR: cannot read {}: {e}", f.display());
                    std::process::exit(2);
                }
            };
            match exec(&mut target, &data) {
                Ok(()) => eprintln!("OK: {} ({} bytes)", f.display(), data.len()),
                Err(msg) => {
                    eprintln!("==CRASH== reproducing {}: {msg}", f.display());
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    let mut rng = Rng::new(cfg.seed);
    let mut corpus = load_corpus(&cfg.corpus_dirs);
    if corpus.is_empty() {
        corpus.push(vec![0u8]);
    }
    let max_len = cfg
        .max_len
        .unwrap_or_else(|| corpus.iter().map(Vec::len).max().unwrap_or(0).max(4096));

    let deadline = match (cfg.runs, cfg.max_total_time) {
        (None, None) => Some(Instant::now() + Duration::from_secs(30)),
        (_, Some(secs)) => Some(Instant::now() + Duration::from_secs(secs)),
        (Some(_), None) => None,
    };

    if !cov::instrumented() {
        eprintln!("INFO: {name}: no coverage instrumentation; blind corpus mutation");
    }

    // Replay the corpus first so checked-in reproducers always run.
    let mut execs: u64 = 0;
    let mut covered = 0usize;
    for input in &corpus {
        if let Err(msg) = exec(&mut target, input) {
            report_crash(&mut target, input, &msg, &prefix);
        }
        execs += 1;
        covered = cov::snapshot_new_coverage().1;
    }
    eprintln!(
        "INFO: {name}: replayed {} corpus inputs, {covered} edges covered",
        corpus.len()
    );

    // Mutation loop.
    loop {
        if let Some(n) = cfg.runs {
            if execs >= n {
                break;
            }
        }
        if let Some(d) = deadline {
            // Check time every iteration; Instant::now is cheap relative
            // to a parser execution.
            if Instant::now() >= d {
                break;
            }
        }
        let mut input = corpus[rng.below(corpus.len())].clone();
        let other = &corpus[rng.below(corpus.len())];
        let other = other.clone();
        havoc(&mut input, Some(&other), max_len, &mut rng);
        if let Err(msg) = exec(&mut target, &input) {
            report_crash(&mut target, &input, &msg, &prefix);
        }
        execs += 1;
        let (new, cov_now) = cov::snapshot_new_coverage();
        covered = cov_now;
        if new {
            corpus.push(input);
        }
        if execs.is_multiple_of(16384) {
            eprintln!("INFO: {name}: {execs} execs, corpus {}, edges {covered}", corpus.len());
        }
    }
    eprintln!(
        "INFO: {name}: done — {execs} execs, corpus {}, edges {covered}, no crashes",
        corpus.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_understands_libfuzzer_subset() {
        let args: Vec<String> = [
            "-runs=100",
            "-max_total_time=5",
            "-seed=9",
            "-max_len=64",
            "-artifact_prefix=art/",
            "-unknown_flag=1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = parse_args(&args);
        assert_eq!(cfg.runs, Some(100));
        assert_eq!(cfg.max_total_time, Some(5));
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.max_len, Some(64));
        assert_eq!(cfg.artifact_prefix.as_deref(), Some("art/"));
        assert!(cfg.corpus_dirs.is_empty());
        assert!(cfg.repro_files.is_empty());
    }

    #[test]
    fn exec_catches_panics_and_reports_message() {
        install_quiet_hook();
        let mut target = |data: &[u8]| {
            if data.first() == Some(&b'!') {
                panic!("boom on bang");
            }
        };
        assert!(exec(&mut target, b"ok").is_ok());
        let err = exec(&mut target, b"!x").unwrap_err();
        assert!(err.contains("boom on bang"), "got: {err}");
    }

    #[test]
    fn minimize_shrinks_to_the_crashing_byte() {
        install_quiet_hook();
        let mut target = |data: &[u8]| {
            if data.contains(&0xEE) {
                panic!("sentinel byte");
            }
        };
        let input: Vec<u8> = (0..200u8).map(|i| if i == 137 { 0xEE } else { i }).collect();
        let min = minimize(&mut target, &input);
        assert_eq!(min, vec![0xEE]);
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }
}
