//! SanitizerCoverage callbacks and the edge-coverage map.
//!
//! Two instrumentation modes are supported, matching what rustc's
//! `sancov-module` LLVM pass can emit:
//!
//! * **trace-pc-guard** — `__sanitizer_cov_trace_pc_guard_init` assigns
//!   each guard a sequential edge id; every hit bumps a slot in a fixed
//!   64 KiB counter map.
//! * **inline-8bit-counters** — the pass allocates the counter region
//!   itself and registers it via `__sanitizer_cov_8bit_counters_init`;
//!   the runtime scans and resets that region directly.
//!
//! Either way, [`snapshot_new_coverage`] folds the per-run counters into
//! AFL-style hit-count buckets and reports whether any (edge, bucket)
//! pair is new against the global `SEEN` bitmap — the signal the driver
//! uses to promote an input into the corpus.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Size of the guard-mode counter map (entries).
pub const MAP_SIZE: usize = 1 << 16;

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU8 = AtomicU8::new(0);
/// Guard-mode hit counters, bumped from instrumented code.
static GUARD_MAP: [AtomicU8; MAP_SIZE] = [ZERO; MAP_SIZE];

/// Number of guards registered by trace-pc-guard instrumentation.
static GUARDS: AtomicUsize = AtomicUsize::new(0);

/// Inline-8bit-counters region: (start address, length).
static INLINE_START: AtomicUsize = AtomicUsize::new(0);
static INLINE_LEN: AtomicUsize = AtomicUsize::new(0);

/// (edge, bucket) pairs observed so far, 8 buckets per edge.
static SEEN: Mutex<Vec<u8>> = Mutex::new(Vec::new());

/// trace-pc-guard initialization: assign sequential ids to every guard
/// in `[start, stop)`. Ids start at 1 so an uninitialized guard (0) maps
/// to a shared slot instead of tripping real edges.
///
/// # Safety
/// Called by compiler-emitted module constructors with a valid range.
#[no_mangle]
pub unsafe extern "C" fn __sanitizer_cov_trace_pc_guard_init(start: *mut u32, stop: *mut u32) {
    if start.is_null() || start == stop {
        return;
    }
    let mut guard = start;
    while guard < stop {
        if *guard == 0 {
            let id = GUARDS.fetch_add(1, Ordering::Relaxed) + 1;
            *guard = (id % MAP_SIZE) as u32;
        }
        guard = guard.add(1);
    }
}

/// trace-pc-guard hit: bump the guard's counter (saturating).
///
/// # Safety
/// Called by instrumented code with a pointer produced by the init hook.
#[no_mangle]
pub unsafe extern "C" fn __sanitizer_cov_trace_pc_guard(guard: *mut u32) {
    if guard.is_null() {
        return;
    }
    let idx = (*guard) as usize % MAP_SIZE;
    let slot = &GUARD_MAP[idx];
    let c = slot.load(Ordering::Relaxed);
    if c < u8::MAX {
        slot.store(c + 1, Ordering::Relaxed);
    }
}

/// inline-8bit-counters initialization: remember the region.
///
/// # Safety
/// Called by compiler-emitted module constructors with a valid range.
#[no_mangle]
pub unsafe extern "C" fn __sanitizer_cov_8bit_counters_init(start: *mut u8, stop: *mut u8) {
    if start.is_null() || stop <= start {
        return;
    }
    INLINE_START.store(start as usize, Ordering::Relaxed);
    INLINE_LEN.store(stop as usize - start as usize, Ordering::Relaxed);
}

/// PC-table registration: unused, but referenced when the pass emits
/// `-sanitizer-coverage-pc-table`.
///
/// # Safety
/// Called by compiler-emitted module constructors; the range is ignored.
#[no_mangle]
pub unsafe extern "C" fn __sanitizer_cov_pcs_init(_start: *const usize, _stop: *const usize) {}

/// AFL hit-count bucket (0..8) for a nonzero counter value.
fn bucket(count: u8) -> u32 {
    match count {
        0 => unreachable!("only nonzero counts are bucketed"),
        1 => 0,
        2 => 1,
        3 => 2,
        4..=7 => 3,
        8..=15 => 4,
        16..=31 => 5,
        32..=127 => 6,
        _ => 7,
    }
}

/// Is any coverage instrumentation registered at all?
pub fn instrumented() -> bool {
    GUARDS.load(Ordering::Relaxed) > 0 || INLINE_LEN.load(Ordering::Relaxed) > 0
}

/// Zero every per-run counter (call before each execution).
pub fn reset_counters() {
    for slot in GUARD_MAP.iter() {
        if slot.load(Ordering::Relaxed) != 0 {
            slot.store(0, Ordering::Relaxed);
        }
    }
    let len = INLINE_LEN.load(Ordering::Relaxed);
    if len > 0 {
        let start = INLINE_START.load(Ordering::Relaxed) as *mut u8;
        // Safety: the region was registered by the init hook and lives
        // for the whole process (it is compiler-allocated static data).
        unsafe { std::ptr::write_bytes(start, 0, len) };
    }
}

/// Fold the current counters into the global `SEEN` bitmap; returns
/// `(new_coverage, total_edges_ever_seen)`.
pub fn snapshot_new_coverage() -> (bool, usize) {
    let mut seen = SEEN.lock().unwrap();
    let inline_len = INLINE_LEN.load(Ordering::Relaxed);
    let edges = if inline_len > 0 { inline_len } else { MAP_SIZE };
    if seen.len() < edges {
        seen.resize(edges, 0);
    }
    let mut new = false;
    let mut mark = |edge: usize, count: u8| {
        let bit = 1u8 << bucket(count);
        if seen[edge] & bit == 0 {
            seen[edge] |= bit;
            new = true;
        }
    };
    if inline_len > 0 {
        let start = INLINE_START.load(Ordering::Relaxed) as *const u8;
        for i in 0..inline_len {
            // Safety: in-bounds read of the registered counter region.
            let c = unsafe { *start.add(i) };
            if c != 0 {
                mark(i, c);
            }
        }
    } else {
        for (i, slot) in GUARD_MAP.iter().enumerate() {
            let c = slot.load(Ordering::Relaxed);
            if c != 0 {
                mark(i, c);
            }
        }
    }
    let covered = seen.iter().filter(|&&b| b != 0).count();
    (new, covered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotonic_classes() {
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(7), 3);
        assert_eq!(bucket(8), 4);
        assert_eq!(bucket(16), 5);
        assert_eq!(bucket(32), 6);
        assert_eq!(bucket(128), 7);
        assert_eq!(bucket(255), 7);
    }

    #[test]
    fn uninstrumented_process_reports_no_coverage() {
        // Unit tests are never built with sancov flags, so the hooks
        // were not called: counters are empty and snapshots are quiet.
        reset_counters();
        let (new, _) = snapshot_new_coverage();
        assert!(!new);
    }
}
