//! Shim for the `libfuzzer-sys` crate: the `fuzz_target!` macro over an
//! in-tree greybox fuzzing runtime instead of LLVM's libFuzzer.
//!
//! The build environment has no registry access, so linking the real
//! libFuzzer runtime is not an option. This shim keeps the `cargo fuzz`
//! project layout and the libFuzzer command-line conventions while the
//! runtime itself lives in [`driver`]:
//!
//! * **Corpus replay** — every file in the corpus directories passed as
//!   positional arguments runs once before mutation starts, so checked-in
//!   regression reproducers are exercised on every invocation.
//! * **Mutation loop** — a deterministic splitmix/xorshift RNG drives
//!   stacked havoc mutations (bit flips, interesting values, arithmetic,
//!   block insert/delete/duplicate, corpus splicing) until `-runs=N` or
//!   `-max_total_time=SECS` is exhausted.
//! * **Coverage feedback** — the crate defines the SanitizerCoverage
//!   callbacks (`__sanitizer_cov_trace_pc_guard`,
//!   `__sanitizer_cov_8bit_counters_init`, ...). Building the fuzz
//!   workspace on nightly with
//!   `RUSTFLAGS="-Cpasses=sancov-module -Cllvm-args=-sanitizer-coverage-level=3 -Cllvm-args=-sanitizer-coverage-inline-8bit-counters"`
//!   instruments every crate, and inputs reaching new edge buckets are
//!   promoted into the in-memory corpus (AFL-style bucketed hit counts).
//!   On stable the callbacks are simply never invoked and the loop
//!   degrades to blind corpus mutation — same interface, less feedback.
//! * **Crash handling** — panics are caught per-execution; a crashing
//!   input is greedily minimized by chunk removal while it still crashes,
//!   then written to `-artifact_prefix` (default
//!   `fuzz/artifacts/<target>/`) as `crash-<hash>`, and the process exits
//!   nonzero — which is what `scripts/ci.sh` keys on.
//!
//! A positional argument that is a *file* (not a directory) switches to
//! reproduce mode: each file runs exactly once and the process exits,
//! the workflow for replaying a checked-in crasher.

pub mod driver;

mod cov;
mod mutate;

/// Whether this binary was built with SanitizerCoverage instrumentation.
///
/// Also serves as a link anchor: an instrumented build graph requires
/// the `__sanitizer_cov_*` hooks this crate defines, but the linker only
/// pulls them in if the binary references *something* from the defining
/// object. Non-fuzzing binaries that share the instrumented crates (e.g.
/// a corpus generator) call this once to force the pull.
pub fn instrumented() -> bool {
    cov::instrumented()
}

/// Define the fuzz entry point, libFuzzer-style.
///
/// ```ignore
/// libfuzzer_sys::fuzz_target!(|data: &[u8]| {
///     let _ = my_parser::parse(data);
/// });
/// ```
#[macro_export]
macro_rules! fuzz_target {
    (|$data:ident: &[u8]| $body:expr) => {
        fn main() {
            $crate::driver::run(env!("CARGO_BIN_NAME"), |$data: &[u8]| {
                let _ = $body;
            });
        }
    };
    (|$data:ident| $body:expr) => {
        $crate::fuzz_target!(|$data: &[u8]| $body);
    };
}
