//! Deterministic havoc mutator.
//!
//! Stacked small mutations in the AFL/libFuzzer family: bit flips, byte
//! sets, interesting-value splats, bounded arithmetic on 1/2/4/8-byte
//! words in both endiannesses, block insert/delete/duplicate, and
//! two-input splicing. Everything is driven by [`Rng`], a splitmix64
//! seeded xorshift generator, so a given `-seed` replays exactly.

/// Deterministic 64-bit RNG (splitmix64 seeding, xorshift* stepping).
pub struct Rng(u64);

impl Rng {
    /// Seed the generator; any seed (including 0) is valid.
    pub fn new(seed: u64) -> Rng {
        // splitmix64 scramble so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Rng((z ^ (z >> 31)) | 1)
    }

    /// Next 64 random bits.
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// A coin flip.
    pub fn flip(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Values that disproportionately trip parser edge cases.
const INTERESTING: &[u64] = &[
    0,
    1,
    0x7f,
    0x80,
    0xff,
    0x100,
    0x7fff,
    0x8000,
    0xffff,
    0x7fff_ffff,
    0x8000_0000,
    0xffff_ffff,
    0x7fff_ffff_ffff_ffff,
    0x8000_0000_0000_0000,
    u64::MAX,
];

/// Apply 1..=16 stacked mutations to `data`, splicing from `other` when
/// chosen. The result is clamped to `max_len` and never left empty.
pub fn havoc(data: &mut Vec<u8>, other: Option<&[u8]>, max_len: usize, rng: &mut Rng) {
    let rounds = 1 + rng.below(16);
    for _ in 0..rounds {
        mutate_once(data, other, max_len, rng);
    }
    if data.len() > max_len {
        data.truncate(max_len);
    }
    if data.is_empty() {
        data.push(rng.next() as u8);
    }
}

fn mutate_once(data: &mut Vec<u8>, other: Option<&[u8]>, max_len: usize, rng: &mut Rng) {
    // An empty buffer supports only insertion.
    if data.is_empty() {
        data.push(rng.next() as u8);
        return;
    }
    match rng.below(9) {
        // Flip one bit.
        0 => {
            let i = rng.below(data.len());
            data[i] ^= 1 << rng.below(8);
        }
        // Overwrite one byte.
        1 => {
            let i = rng.below(data.len());
            data[i] = rng.next() as u8;
        }
        // Splat an interesting value at a random width and endianness.
        2 => {
            let v = INTERESTING[rng.below(INTERESTING.len())];
            let width = [1usize, 2, 4, 8][rng.below(4)];
            if data.len() >= width {
                let i = rng.below(data.len() - width + 1);
                let bytes = if rng.flip() {
                    v.to_le_bytes()
                } else {
                    v.to_be_bytes()
                };
                data[i..i + width].copy_from_slice(&bytes[..width]);
            }
        }
        // Bounded add/subtract on a 1/2/4/8-byte word.
        3 => {
            let width = [1usize, 2, 4, 8][rng.below(4)];
            if data.len() >= width {
                let i = rng.below(data.len() - width + 1);
                let delta = (1 + rng.below(35)) as u64;
                let mut word = [0u8; 8];
                word[..width].copy_from_slice(&data[i..i + width]);
                let le = rng.flip();
                let v = if le {
                    u64::from_le_bytes(word)
                } else {
                    u64::from_be_bytes(word)
                };
                let v = if rng.flip() {
                    v.wrapping_add(delta)
                } else {
                    v.wrapping_sub(delta)
                };
                let bytes = if le { v.to_le_bytes() } else { v.to_be_bytes() };
                data[i..i + width].copy_from_slice(&bytes[..width]);
            }
        }
        // Insert a short random block.
        4 => {
            if data.len() < max_len {
                let i = rng.below(data.len() + 1);
                let n = 1 + rng.below(8.min(max_len - data.len()));
                let block: Vec<u8> = (0..n).map(|_| rng.next() as u8).collect();
                data.splice(i..i, block);
            }
        }
        // Delete a block.
        5 => {
            let i = rng.below(data.len());
            let n = 1 + rng.below((data.len() - i).min(16));
            data.drain(i..i + n);
        }
        // Duplicate a block elsewhere.
        6 => {
            let i = rng.below(data.len());
            let n = 1 + rng.below((data.len() - i).min(32));
            let block: Vec<u8> = data[i..i + n].to_vec();
            let at = rng.below(data.len() + 1);
            data.splice(at..at, block);
        }
        // Splice a window from another corpus entry.
        7 => {
            if let Some(o) = other.filter(|o| !o.is_empty()) {
                let oi = rng.below(o.len());
                let on = 1 + rng.below((o.len() - oi).min(64));
                let at = rng.below(data.len() + 1);
                let end = (at + on).min(data.len());
                data.splice(at..end, o[oi..oi + on].iter().copied());
            }
        }
        // ASCII-digit churn: numbers and hex size fields live in text.
        _ => {
            let i = rng.below(data.len());
            data[i] = b"0123456789abcdefxXeE+-."[rng.below(23)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_mutations() {
        let mut a = b"seed input".to_vec();
        let mut b = a.clone();
        let mut r1 = Rng::new(42);
        let mut r2 = Rng::new(42);
        for _ in 0..100 {
            havoc(&mut a, Some(b"other"), 4096, &mut r1);
            havoc(&mut b, Some(b"other"), 4096, &mut r2);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn havoc_respects_max_len_and_nonempty() {
        let mut rng = Rng::new(7);
        let mut data = vec![0u8; 64];
        for _ in 0..1000 {
            havoc(&mut data, None, 128, &mut rng);
            assert!(!data.is_empty());
            assert!(data.len() <= 128);
        }
    }
}
