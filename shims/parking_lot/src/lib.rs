//! Shim for the `parking_lot` crate: the same lock API surface backed by
//! `std::sync`. Guards are returned directly (no `Result`); a poisoned
//! lock is recovered rather than propagated, matching `parking_lot`'s
//! panic-free behavior.

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unlocks() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
