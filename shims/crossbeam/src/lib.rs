//! Shim for the `crossbeam` crate: scoped threads with crossbeam's
//! call shape (`scope(|s| ...)` returning a `Result`, spawn closures
//! taking a scope argument) implemented over `std::thread::scope`.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of joining a (possibly panicked) thread or scope.
    pub type Result<T> = std::thread::Result<T>;

    /// The scope handle passed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives a unit
        /// placeholder where crossbeam passes a nested scope handle (the
        /// workspace only ever ignores that argument).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Run `f` with a scope in which threads can borrow from the caller's
    /// stack. All spawned threads are joined before `scope` returns; if
    /// the closure (or an unjoined thread's propagated panic) panics, the
    /// payload is returned as `Err` like crossbeam does.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().unwrap()
        });
        assert!(r.is_err());
    }
}
