//! Shim for the `criterion` crate.
//!
//! Real wall-clock measurement with criterion's call shape: a warmup
//! phase sizes the batch, then `sample_size` batches are timed and the
//! median ns/iter is reported. Each benchmark prints a human-readable
//! line plus a machine-readable `BENCH {json}` line so results can be
//! collected into a JSON report with `grep '^BENCH '`.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Two-part benchmark identifier: function name + parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    sample_size: usize,
    /// Median nanoseconds per iteration, filled in by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure a routine: warm up while counting iterations to size a
    /// batch, then time `sample_size` batches and keep the median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run until the warmup budget elapses, counting iters.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std_black_box(routine());
            warm_iters += 1;
        }
        let warm_elapsed = warm_start.elapsed();
        let est_ns = (warm_elapsed.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Batch size: aim for measurement budget split across samples.
        let budget_ns = self.measure.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((budget_ns / est_ns).round() as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// A named group of benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher();
        f(&mut b, input);
        self.report(&id, &b);
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher();
        f(&mut b);
        self.report(&id, &b);
    }

    /// Finish the group (no-op; reporting happens per benchmark).
    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            warm_up: self.criterion.warm_up,
            measure: self.criterion.measure,
            sample_size: self.criterion.sample_size,
            ns_per_iter: 0.0,
        }
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let ns = b.ns_per_iter;
        let full = format!("{}/{}", self.name, id);
        let (tp_field, tp_human) = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let mibps = n as f64 / ns * 1e9 / (1024.0 * 1024.0);
                (
                    format!(",\"throughput_bytes\":{n}"),
                    format!("  {mibps:.1} MiB/s"),
                )
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / ns * 1e9 / 1e6;
                (
                    format!(",\"throughput_elems\":{n}"),
                    format!("  {meps:.1} Melem/s"),
                )
            }
            None => (String::new(), String::new()),
        };
        println!("{full:<60} {ns:>14.1} ns/iter{tp_human}");
        println!("BENCH {{\"id\":\"{full}\",\"ns_per_iter\":{ns:.1}{tp_field}}}");
    }
}

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1000),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Set the warmup duration.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Set the total measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measure = d;
        self
    }

    /// Set the number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            sample_size: self.sample_size,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        let ns = b.ns_per_iter;
        println!("{name:<60} {ns:>14.1} ns/iter");
        println!("BENCH {{\"id\":\"{name}\",\"ns_per_iter\":{ns:.1}}}");
    }
}

/// Define a benchmark group function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(30))
            .sample_size(5);
        let mut group = c.benchmark_group("shim_self_test");
        group.throughput(Throughput::Bytes(8));
        let input = vec![1u64, 2, 3, 4];
        group.bench_with_input(BenchmarkId::new("sum", 4), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn id_formats_as_function_slash_param() {
        assert_eq!(BenchmarkId::new("encode", 1365).to_string(), "encode/1365");
    }
}
