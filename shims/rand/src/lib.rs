//! Shim for the `rand` crate (0.9 naming): a deterministic SplitMix64
//! generator exposed through `rngs::StdRng`, `SeedableRng::seed_from_u64`
//! and `Rng::random_range`.

use std::ops::Range;

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core output of a random generator.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of rand 0.9's `Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform value in `[0, 1)`.
    fn random_unit_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 high bits → exactly representable uniform dyadic in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<G: RngCore> Rng for G {}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<G: Rng>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.random_unit_f64()
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )+
    };
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Deterministic,
    /// full-period over its 64-bit state, passes the statistical bar the
    /// benchmark workloads need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.random_range(180.0..330.0);
            assert!((180.0..330.0).contains(&v));
        }
    }

    #[test]
    fn int_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn values_spread_over_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(0.0..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }
}
