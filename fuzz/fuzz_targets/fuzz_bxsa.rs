//! Fuzz every BXSA reader against the same untrusted bytes: the tree
//! decoder (fresh and dirty-slot), the pull reader, the allocation-free
//! field reader, and the streaming frame assembler.
//!
//! Oracles beyond "don't panic":
//! * Fresh decode and dirty-slot `decode_into` must agree byte for byte.
//! * A document that decodes must re-encode canonically and decode back
//!   to itself (idempotence — the wrong-value detector).
//! * If the tree decoder accepts the input, the pull reader must drive
//!   the same input to completion without error, arrays included.

use libfuzzer_sys::fuzz_target;

fn drive_pull(data: &[u8]) -> Result<usize, bxsa::BxsaError> {
    let mut r = bxsa::PullReader::new(data)?;
    let mut events = 0usize;
    while let Some(event) = r.next_event()? {
        events += 1;
        if let bxsa::PullEvent::Array(a) = event {
            let _ = a.read()?;
        }
        if events > 1_000_000 {
            break;
        }
    }
    Ok(events)
}

fn drive_field_reader(data: &[u8]) {
    let Ok(mut fr) = bxsa::FieldReader::new(data) else {
        return;
    };
    for _ in 0..100_000 {
        match fr.open() {
            Ok(head) => {
                if fr.skip(&head).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn drive_assembler(data: &[u8]) {
    let mut asm = bxsa::FrameAssembler::new(bxsa::DEFAULT_WINDOW);
    for piece in data.chunks(7) {
        asm.feed(piece);
        loop {
            match asm.next_frame() {
                Ok(Some(frame)) => {
                    let _ = bxsa::decode_element(frame, &bxsa::DecodeOptions::default());
                }
                Ok(None) => break,
                Err(_) => return,
            }
        }
    }
    asm.finish();
    while let Ok(Some(_)) = asm.next_frame() {}
}

fuzz_target!(|data: &[u8]| {
    let fresh = bxsa::decode(data);

    // Dirty-slot decode into a document already holding other content.
    let mut slot = bxsa::decode(
        &bxsa::encode(&bxdm::Document::with_root(
            bxdm::Element::component("x:old")
                .with_namespace("x", "urn:previous")
                .with_child(bxdm::Element::leaf("x:v", bxdm::AtomicValue::I64(-1)))
                .with_child(bxdm::Element::array(
                    "x:a",
                    bxdm::ArrayValue::F32(vec![1.0; 9]),
                )),
        ))
        .unwrap(),
    )
    .unwrap();
    let reused = bxsa::decode_into(data, &mut slot);
    assert_eq!(
        fresh.is_ok(),
        reused.is_ok(),
        "decode and decode_into disagree on acceptance"
    );

    match &fresh {
        Ok(doc) => {
            // Compare via canonical bytes, not `==`: a hostile input can
            // carry NaN payloads, and NaN != NaN would fail tree equality
            // on documents that are in fact bit-identical.
            let re = bxsa::encode(doc).expect("decoded document must re-encode");
            let re_slot = bxsa::encode(&slot).expect("dirty-slot document must re-encode");
            assert_eq!(re_slot, re, "dirty-slot decode_into diverged from decode");
            // Idempotence: canonical re-encode must decode back to a tree
            // that re-encodes to the same bytes (the wrong-value detector).
            let back = bxsa::decode(&re).expect("re-encoded document must decode");
            let re2 = bxsa::encode(&back).expect("round-tripped document must re-encode");
            assert_eq!(re2, re, "re-encode round trip changed the document");
            drive_pull(data).expect("pull reader rejected tree-decodable input");
        }
        Err(_) => {
            let _ = drive_pull(data);
        }
    }

    drive_field_reader(data);
    drive_assembler(data);
});
