//! Differential oracle for the numeric text kernels against the
//! standard library — the paper's hot path, where a one-ULP divergence
//! is a silent wrong value in every array element.
//!
//! * `parse_u64`/`parse_i64`/`parse_f64`: wherever the kernel accepts,
//!   std must accept with the identical result (bit-for-bit for f64);
//!   wherever the kernel's own grammar holds, acceptance must match std.
//! * `write_u64`/`write_i64`: identical to `format!`.
//! * `write_f64` on arbitrary bit patterns: must re-parse (kernel and
//!   std alike) to the identical bits — shortest round-trip fidelity.

use libfuzzer_sys::fuzz_target;

fn check_parsers(s: &str) {
    if let Some(v) = xmltext::num::parse_u64(s) {
        assert_eq!(s.parse::<u64>().ok(), Some(v), "parse_u64 diverges on {s:?}");
    }
    if let Some(v) = xmltext::num::parse_i64(s) {
        assert_eq!(s.parse::<i64>().ok(), Some(v), "parse_i64 diverges on {s:?}");
    }
    if let Some(v) = xmltext::num::parse_f64(s) {
        let std = s.parse::<f64>().unwrap_or_else(|_| {
            panic!("parse_f64 accepted {s:?} but std rejected it");
        });
        assert_eq!(
            v.to_bits(),
            std.to_bits(),
            "parse_f64 diverges from std on {s:?}"
        );
    }
}

fn check_writers(data: &[u8]) {
    for chunk in data.chunks_exact(8) {
        let bits = u64::from_le_bytes(chunk.try_into().unwrap());

        let u = bits;
        let mut out = String::new();
        xmltext::num::write_u64(u, &mut out);
        assert_eq!(out, format!("{u}"), "write_u64 diverges");

        let i = bits as i64;
        out.clear();
        xmltext::num::write_i64(i, &mut out);
        assert_eq!(out, format!("{i}"), "write_i64 diverges");

        let f = f64::from_bits(bits);
        out.clear();
        xmltext::num::write_f64(f, &mut out);
        if f.is_nan() {
            assert_eq!(out, "NaN");
            continue;
        }
        if f.is_infinite() {
            assert_eq!(out, if f > 0.0 { "INF" } else { "-INF" });
            continue;
        }
        let via_std: f64 = out.parse().expect("write_f64 output must parse via std");
        assert_eq!(
            via_std.to_bits(),
            f.to_bits(),
            "write_f64 is not round-trip exact for bits {bits:#018x} ({out:?})"
        );
        let via_kernel = xmltext::num::parse_f64(&out)
            .expect("write_f64 output must parse via the kernel parser");
        assert_eq!(via_kernel.to_bits(), f.to_bits());
    }
}

fuzz_target!(|data: &[u8]| {
    if let Ok(s) = std::str::from_utf8(data) {
        check_parsers(s);
    }
    check_writers(data);
});
