//! Fuzz the XBS primitive layer: VLS integers, counted reads, strings,
//! packed arrays — the length-bearing readers everything above trusts.
//!
//! The first byte of the input is an opcode script selecting which
//! reader to exercise; the rest is the buffer under attack. A separate
//! oracle checks VLS round-tripping: any value the reader accepts must
//! re-encode to the identical canonical bytes.

use libfuzzer_sys::fuzz_target;
use xbs::{ByteOrder, XbsReader, XbsWriter};

fn drive_reads(script: &[u8], buf: &[u8]) {
    let order = if script.first().copied().unwrap_or(0) & 1 == 0 {
        ByteOrder::Little
    } else {
        ByteOrder::Big
    };
    let mut r = XbsReader::new(buf, order);
    for &op in script {
        let ok = match op % 12 {
            0 => r.read_raw_u8().is_ok(),
            1 => r.read_vls().is_ok(),
            2 => r.read_vls_padded().is_ok(),
            3 => r.read_str().is_ok(),
            4 => r.read::<i32>().is_ok(),
            5 => r.read::<f64>().is_ok(),
            6 => r.read_count(8).is_ok(),
            7 => match r.read_count(4) {
                Ok(n) => r.read_packed::<i32>(n).is_ok(),
                Err(_) => false,
            },
            8 => match r.read_count(8) {
                Ok(n) => r.read_packed::<f64>(n).is_ok(),
                Err(_) => false,
            },
            9 => r.read_array::<i16>().is_ok(),
            10 => r.align(8).is_ok(),
            _ => r.read_bytes(3).is_ok(),
        };
        if !ok && r.is_at_end() {
            break;
        }
    }
}

fn vls_roundtrip(buf: &[u8]) {
    let mut r = XbsReader::new(buf, ByteOrder::Little);
    let Ok(v) = r.read_vls() else { return };
    let used = r.position();
    let mut w = XbsWriter::new(ByteOrder::Little);
    w.put_vls(v);
    assert_eq!(
        w.as_bytes(),
        &buf[..used],
        "accepted VLS {v} is not canonical"
    );
}

fuzz_target!(|data: &[u8]| {
    if data.is_empty() {
        return;
    }
    let split = (data[0] as usize % 8) + 1;
    if data.len() <= split {
        return;
    }
    let (script, buf) = data.split_at(split);
    drive_reads(script, buf);
    vls_roundtrip(buf);

    // Packed reads honor alignment relative to the buffer start: whatever
    // the offset, a successful read must never slice misaligned memory
    // (debug assertions in read_packed_zero_copy would catch it).
    let mut r = XbsReader::new(buf, ByteOrder::Little);
    if r.seek(script[0] as usize % (buf.len() + 1)).is_ok() {
        if let Ok(n) = r.read_count(8) {
            let _ = r.read_packed::<f64>(n);
        }
    }
});
