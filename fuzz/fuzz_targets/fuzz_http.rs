//! Fuzz the HTTP request parser, the chunked-transfer decoder, and the
//! Retry-After date parser — the three text protocols that read bytes
//! straight off a socket.
//!
//! Chunked-decoder oracle: feeding the same body byte-at-a-time and
//! all-at-once must produce the identical payload and the identical
//! accept/reject outcome — a split-sensitive parser is smuggling state.

use libfuzzer_sys::fuzz_target;
use transport::http::chunked::{ChunkDecoder, ChunkEvent};

/// Decode `data` as a chunked body, `step` bytes per feed. Returns the
/// concatenated payload, or `None` on a decode error.
fn decode_chunked(data: &[u8], step: usize) -> Option<Vec<u8>> {
    let mut dec = ChunkDecoder::new();
    let mut payload = Vec::new();
    let mut fed = 0;
    while fed < data.len() && !dec.is_done() {
        let end = (fed + step).min(data.len());
        let mut window = &data[fed..end];
        fed = end;
        while !window.is_empty() {
            match dec.advance(window) {
                Ok((n, event)) => {
                    match event {
                        ChunkEvent::NeedMore => {
                            if n == 0 {
                                break;
                            }
                        }
                        ChunkEvent::Data { payload: p, .. } => payload.extend_from_slice(p),
                        ChunkEvent::End => return Some(payload),
                    }
                    window = &window[n..];
                }
                Err(_) => return None,
            }
        }
    }
    if dec.is_done() {
        Some(payload)
    } else {
        None // truncated input: treated as reject for the oracle
    }
}

fuzz_target!(|data: &[u8]| {
    // Request head (+ body) parsing over an in-memory reader.
    let mut r = data;
    let _ = transport::http::request::HttpRequest::read_from(&mut r);
    let mut r = data;
    let mut pooled = Vec::with_capacity(64);
    pooled.extend_from_slice(b"stale body from the previous request");
    let _ = transport::http::request::HttpRequest::read_from_with_body(&mut r, pooled);

    // Chunked decoding must be split-invariant.
    let whole = decode_chunked(data, data.len().max(1));
    for step in [1usize, 2, 7] {
        let split = decode_chunked(data, step);
        assert_eq!(
            split, whole,
            "chunk decoder output depends on read boundaries (step {step})"
        );
    }

    // The blocking helper must agree with the incremental decoder on
    // acceptance whenever the body fits the cap.
    let mut out = Vec::new();
    let mut r = data;
    let blocking = transport::http::chunked::read_chunked_body_into(&mut r, &mut out, 1 << 20);
    if let (Ok(()), Some(p)) = (&blocking, &whole) {
        assert_eq!(&out, p, "blocking and incremental chunk decoders diverge");
    }

    // Date parsing: any ASCII-ish slice is fair game.
    if let Ok(s) = std::str::from_utf8(data) {
        let _ = transport::http::date::parse_http_date(s);
        let _ = transport::http::date::parse_retry_after(s);
    }
});
