//! Differential transcode oracle: XML ↔ BXSA conversions must reach a
//! byte-for-byte fixpoint after one canonicalization round.
//!
//! Two entry directions share the oracle:
//! * binary-first — any input the BXSA decoder accepts must transcode
//!   to XML, back to (canonical) BXSA, and then cycle exactly;
//! * text-first — any input the XML parser accepts must do the same
//!   starting from `xml_to_bxsa`.
//!
//! String/byte comparison (not tree `==`) keeps NaN-carrying documents
//! honest: NaN != NaN, but its canonical spelling is stable.

use libfuzzer_sys::fuzz_target;

fn cycle_from_bxsa(bytes: &[u8]) {
    let xml = bxsa::bxsa_to_xml(bytes).expect("decodable input must transcode to XML");
    let canonical = bxsa::xml_to_bxsa(&xml).expect("transcoded XML must parse back");
    let xml2 = bxsa::bxsa_to_xml(&canonical).expect("canonical bytes must transcode");
    assert_eq!(xml, xml2, "XML transcode is not a fixpoint");
    let canonical2 = bxsa::xml_to_bxsa(&xml2).expect("fixpoint XML must parse back");
    assert_eq!(canonical, canonical2, "BXSA transcode is not a fixpoint");
}

fuzz_target!(|data: &[u8]| {
    if bxsa::decode(data).is_ok() {
        cycle_from_bxsa(data);
    }

    if let Ok(s) = std::str::from_utf8(data) {
        if let Ok(bytes) = bxsa::xml_to_bxsa(s) {
            cycle_from_bxsa(&bytes);
        }
    }
});
