//! Fuzz the XML text readers: tree parser (fresh and dirty-slot),
//! field-level pull reader, and the raw lexer.
//!
//! Oracles beyond "don't panic":
//! * `parse_into` into a dirty slot must agree with a fresh `parse` —
//!   both in outcome and in the resulting document.
//! * A document that parses must serialize and re-parse to itself
//!   (lexical round-trip through the writer).

use libfuzzer_sys::fuzz_target;

fn drive_lexer(s: &str) {
    let mut lx = xmltext::lexer::Lexer::new(s);
    for _ in 0..100_000 {
        match lx.next_event() {
            Ok(xmltext::lexer::Event::StartTagOpen { .. }) => loop {
                match lx.next_attr() {
                    Ok(xmltext::lexer::AttrEvent::Attr(..)) => {}
                    Ok(xmltext::lexer::AttrEvent::TagEnd { .. }) => break,
                    Err(_) => return,
                }
            },
            Ok(xmltext::lexer::Event::Eof) => return,
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

fn drive_field_reader(s: &str) {
    let mut fr = xmltext::XmlFieldReader::new(s);
    for _ in 0..100_000 {
        match fr.next() {
            Ok(xmltext::XmlItem::Eof) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

fuzz_target!(|data: &[u8]| {
    let Ok(s) = std::str::from_utf8(data) else {
        return;
    };
    drive_lexer(s);
    drive_field_reader(s);

    let fresh = xmltext::parse(s);

    // Dirty-slot decode: reuse a document that already holds content.
    let mut slot = xmltext::parse("<a x='1'><b>text</b><c/></a>").unwrap();
    let reused = xmltext::parse_into(s, &mut slot);
    assert_eq!(
        fresh.is_ok(),
        reused.is_ok(),
        "parse and parse_into disagree on acceptance"
    );

    if let Ok(doc) = fresh {
        assert_eq!(slot, doc, "dirty-slot parse_into diverged from parse");
        let text = xmltext::to_string(&doc).expect("serialization is infallible");
        let back = xmltext::parse(&text).expect("serialized document must re-parse");
        assert_eq!(back, doc, "write/parse round trip changed the document");
    }
});
