//! Regenerate the binary seed corpora under `fuzz/corpus/` from the
//! production encoders, so seeds stay in sync with the wire format.
//!
//!     cargo run --release --manifest-path fuzz/Cargo.toml --bin gen_corpus
//!
//! Text seeds (XML, HTTP, numbers) are plain checked-in files and are
//! not touched here.

use std::fs;
use std::path::Path;

use bxdm::{ArrayValue, AtomicValue, Document, Element};
use xbs::ByteOrder;

fn sample_doc() -> Document {
    Document::with_root(
        Element::component("d:run")
            .with_namespace("d", "http://example.org/data")
            .with_child(Element::leaf("d:step", AtomicValue::I64(42)))
            .with_child(Element::leaf("d:name", AtomicValue::Str("field".into())))
            .with_child(Element::array(
                "d:values",
                ArrayValue::F64((0..16).map(f64::from).collect()),
            )),
    )
}

fn mixed_doc() -> Document {
    Document::with_root(
        Element::component("m:msg")
            .with_namespace("m", "urn:mixed")
            .with_child(Element::leaf("m:flag", AtomicValue::Bool(true)))
            .with_child(Element::leaf("m:tiny", AtomicValue::I32(-7)))
            .with_child(Element::array("m:b", ArrayValue::U8((0..64).collect())))
            .with_child(Element::array(
                "m:f",
                ArrayValue::F32((0..5).map(|i| i as f32 * 0.5).collect()),
            )),
    )
}

fn write(dir: &Path, name: &str, bytes: &[u8]) {
    fs::create_dir_all(dir).unwrap();
    fs::write(dir.join(name), bytes).unwrap();
    println!("  {} ({} bytes)", dir.join(name).display(), bytes.len());
}

fn main() {
    let _ = libfuzzer_sys::instrumented(); // link anchor for sancov builds
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");

    let le = bxsa::encode(&sample_doc()).unwrap();
    let be = bxsa::encode_with(
        &sample_doc(),
        &bxsa::EncodeOptions {
            byte_order: ByteOrder::Big,
            ..Default::default()
        },
    )
    .unwrap();
    let checked = bxsa::encode_with(
        &mixed_doc(),
        &bxsa::EncodeOptions {
            checksum: true,
            ..Default::default()
        },
    )
    .unwrap();
    let part = bxsa::encode_element(
        &Element::component("p:part")
            .with_namespace("p", "urn:p")
            .with_child(Element::leaf("p:n", AtomicValue::I64(3))),
        &bxsa::EncodeOptions::default(),
    )
    .unwrap();

    for target in ["fuzz_bxsa", "fuzz_transcode"] {
        let dir = root.join(target);
        write(&dir, "doc_le.bin", &le);
        write(&dir, "doc_be.bin", &be);
        write(&dir, "doc_checksummed.bin", &checked);
        write(&dir, "part.bin", &part);
    }

    // xbs seeds: an opcode script prefix (first byte selects the split)
    // ahead of real encoded frames gives the reader loop live data.
    let dir = root.join("fuzz_xbs");
    let mut seed = vec![3u8, 1, 2, 7, 8];
    seed.extend_from_slice(&le);
    write(&dir, "script_doc.bin", &seed);
    let mut w = xbs::XbsWriter::new(ByteOrder::Little);
    w.put_vls(u64::MAX);
    w.put_vls(300);
    w.put_vls(0);
    let mut seed = vec![2u8, 1, 1, 1];
    seed.extend_from_slice(w.as_bytes());
    write(&dir, "script_vls.bin", &seed);
}
